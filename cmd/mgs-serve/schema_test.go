package main

import (
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"mgs/internal/exp"
	"mgs/internal/serve"
)

// keyPaths flattens a decoded JSON value into its set of key paths
// (arrays contribute their element shape once), the structural schema
// of the document — same guard mgs-bench applies to its report.
func keyPaths(v any, prefix string, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			keyPaths(child, prefix+"."+k, out)
		}
	case []any:
		if len(x) == 0 {
			out[prefix+"[]"] = true
			return
		}
		keyPaths(x[0], prefix+"[]", out)
	default:
		out[prefix] = true
	}
}

func sortedPaths(data []byte, t *testing.T) []string {
	t.Helper()
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	m := map[string]bool{}
	keyPaths(v, "", m)
	paths := make([]string, 0, len(m))
	for p := range m {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// TestReportJSONSchema pins the mgs-serve -json document's key paths:
// CI's smoke job and any downstream SLO tracking parse these names, so
// a rename or removal must be a deliberate, visible change here.
func TestReportJSONSchema(t *testing.T) {
	w := serve.DefaultWorkload(true, 1)
	rep, _, err := exp.ServeRun(w, 8, 2, exp.ServeChaosPlan(1),
		serve.SLO{P99: 2_500_000, P999: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		".c", ".cycles", ".dropped_msgs", ".gets",
		".lock_hits", ".lock_total", ".p",
		".phases[].count", ".phases[].mean_cycles", ".phases[].p50_cycles",
		".phases[].p99_cycles", ".phases[].p999_cycles", ".phases[].phase",
		".phases[].slo_ok",
		".puts", ".requests", ".retransmits", ".scans",
		".seed", ".slo.p50", ".slo.p99", ".slo.p999", ".slo_ok", ".theta",
	}
	got := sortedPaths(out, t)
	// The SLO's omitempty fields only appear when set; normalize by
	// checking the set-fields run (p99, p999 set; p50 absent).
	wantSet := map[string]bool{}
	for _, p := range want {
		if p == ".slo.p50" {
			continue // unset in this run, omitted by omitempty
		}
		wantSet[p] = true
	}
	gotSet := map[string]bool{}
	for _, p := range got {
		gotSet[p] = true
	}
	if !reflect.DeepEqual(gotSet, wantSet) {
		t.Fatalf("mgs-serve JSON schema drifted:\ngot:  %v\nwant: %v", got, want)
	}
}

// TestBreakdownJSONSchema pins the -breakdown document: the same report
// shape plus the breakdown object. A plain run must NOT carry the
// breakdown key (omitempty — checked above); a profiled run adds
// exactly these paths.
func TestBreakdownJSONSchema(t *testing.T) {
	w := serve.DefaultWorkload(true, 1)
	rep, _, err := exp.ServeRunBreakdown(w, 8, 2, exp.ServeChaosPlan(1),
		serve.SLO{P99: 2_500_000, P999: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breakdown == nil {
		t.Fatal("ServeRunBreakdown returned no breakdown")
	}
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	wantExtra := map[string]bool{
		".breakdown.user_cycles":        true,
		".breakdown.lock_cycles":        true,
		".breakdown.barrier_cycles":     true,
		".breakdown.protocol_cycles":    true,
		".breakdown.transport_cycles":   true,
		".breakdown.per_request_cycles": true,
		".breakdown.hot_locks[].id":     true,
		".breakdown.hot_locks[].cycles": true,
	}
	got := map[string]bool{}
	for _, p := range sortedPaths(out, t) {
		if strings.HasPrefix(p, ".breakdown") {
			got[p] = true
		}
	}
	if !reflect.DeepEqual(got, wantExtra) {
		t.Fatalf("-breakdown JSON schema drifted:\ngot:  %v\nwant: %v", got, wantExtra)
	}
	if sum := rep.Breakdown.LockCycles + rep.Breakdown.BarrierCycles +
		rep.Breakdown.ProtocolCycles; sum <= 0 {
		t.Error("breakdown attributed no synchronization or protocol cycles")
	}
	if rep.Breakdown.TransportCycles <= 0 {
		t.Error("5%-loss run attributed no transport recovery cycles")
	}
	if len(rep.Breakdown.HotLocks) == 0 {
		t.Error("no per-lock attribution in a lock-heavy serving run")
	}
}

// TestCSVHeaderPinned pins the CSV column sets the same way.
func TestCSVHeaderPinned(t *testing.T) {
	wantReport := []string{
		"p", "c", "seed", "phase", "count",
		"mean_cycles", "p50_cycles", "p99_cycles", "p999_cycles",
		"lock_hits", "lock_total", "dropped_msgs", "retransmits", "slo_ok",
	}
	if !reflect.DeepEqual(serve.CSVHeader, wantReport) {
		t.Errorf("report CSV header drifted: %v", serve.CSVHeader)
	}
	wantSweep := []string{
		"p", "c", "variant", "phase", "count",
		"mean_cycles", "p50_cycles", "p99_cycles", "p999_cycles",
		"dropped_msgs", "retransmits", "mem_ok",
	}
	if !reflect.DeepEqual(exp.ServeTailCSVHeader, wantSweep) {
		t.Errorf("sweep CSV header drifted: %v", exp.ServeTailCSVHeader)
	}
	wantBreakdown := []string{"component", "cycles", "per_request_cycles"}
	if !reflect.DeepEqual(serve.BreakdownCSVHeader, wantBreakdown) {
		t.Errorf("breakdown CSV header drifted: %v", serve.BreakdownCSVHeader)
	}
}

// TestFlagParsers covers the -phases and -slo grammars.
func TestFlagParsers(t *testing.T) {
	w := serve.DefaultWorkload(true, 1)
	if err := applyPhases(&w, "steady:1000,flash:2000"); err != nil {
		t.Fatal(err)
	}
	if w.Phases[0].Cycles != 1000 || w.Phases[2].Cycles != 2000 {
		t.Errorf("phase durations not applied: %+v", w.Phases)
	}
	if err := applyPhases(&w, "nope:1"); err == nil {
		t.Error("unknown phase name accepted")
	}
	if err := applyPhases(&w, "steady"); err == nil {
		t.Error("missing duration accepted")
	}
	slo, err := parseSLO("p50:1,p99:2,p999:3")
	if err != nil || slo != (serve.SLO{P50: 1, P99: 2, P999: 3}) {
		t.Errorf("parseSLO = %+v, %v", slo, err)
	}
	if _, err := parseSLO("p98:5"); err == nil {
		t.Error("unknown quantile accepted")
	}
}
