// mgs-serve drives the online-serving workload (internal/serve): a
// sharded key-value/session store in MGS shared memory under a
// deterministic open-loop traffic schedule (steady Zipf, working-set
// drift, flash crowd), reporting per-phase p50/p99/p999 latency in
// simulated cycles. Output is deterministic: bit-identical across
// -workers and -engine-workers settings and across reruns at a fixed
// seed.
//
// Usage:
//
//	mgs-serve                                  # default workload, P=32 C=4
//	mgs-serve -workload write-heavy -skew 1.1
//	mgs-serve -phases steady:800000,flash:400000
//	mgs-serve -slo p99:2500000,p999:5000000 -enforce-slo
//	mgs-serve -chaos                           # 5% message loss
//	mgs-serve -sweep -csv                      # tail vs cluster size, clean+chaos
//	mgs-serve -json                            # full report document
//
// Exit status is nonzero on verification failure, on an SLO miss with
// -enforce-slo, or in -sweep mode if any chaos run's final memory
// diverges from the fault-free run.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"mgs/internal/cli"
	"mgs/internal/exp"
	"mgs/internal/fault"
	"mgs/internal/serve"
	"mgs/internal/sim"
)

func main() {
	t := cli.New("mgs-serve").ShapeFlags(32, 4, false).SweepFlags()
	var (
		workload   = flag.String("workload", "default", "op mix preset: "+strings.Join(serve.Mixes, ", "))
		skew       = flag.Float64("skew", 0.9, "Zipf skew exponent theta (0 = uniform)")
		phases     = flag.String("phases", "", "override phase durations, e.g. steady:800000,drift:800000,flash:400000")
		sloFlag    = flag.String("slo", "", "per-phase latency SLO in cycles, e.g. p99:2500000,p999:5000000")
		seed       = flag.Uint64("seed", 1, "workload seed")
		chaos      = flag.Bool("chaos", false, "inject 5% message loss (exp.ServeChaosPlan)")
		sweep      = flag.Bool("sweep", false, "sweep cluster sizes, fault-free and 5%-loss columns")
		asJSON     = flag.Bool("json", false, "emit the report as JSON")
		breakdown  = flag.Bool("breakdown", false, "attribute per-request cost: lock wait vs protocol vs transport (profiled run)")
		enforceSLO = flag.Bool("enforce-slo", false, "exit nonzero if any phase misses the SLO")
	)
	t.Parse()

	w := serve.DefaultWorkload(t.Small, *seed)
	if !serve.ApplyMix(&w, *workload) {
		log.Fatalf("unknown workload %q (have: %s)", *workload, strings.Join(serve.Mixes, ", "))
	}
	w.Theta = *skew
	if err := applyPhases(&w, *phases); err != nil {
		log.Fatal(err)
	}
	slo, err := parseSLO(*sloFlag)
	if err != nil {
		log.Fatal(err)
	}

	if *sweep {
		points, err := exp.ServeTailSweep(w, t.P, slo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(exp.ServeTailCSV(points))
		for _, pt := range points {
			if !pt.MemOK {
				log.Fatalf("C=%d: chaos memory diverges from fault-free run", pt.C)
			}
		}
		if *enforceSLO {
			for _, pt := range points {
				if !pt.Clean.SLOOK {
					log.Fatalf("C=%d: SLO missed", pt.C)
				}
			}
		}
		return
	}

	var plan fault.Plan
	if *chaos {
		plan = exp.ServeChaosPlan(*seed)
	}
	run := exp.ServeRun
	if *breakdown {
		run = exp.ServeRunBreakdown
	}
	rep, _, err := run(w, t.P, t.C, plan, slo)
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case *asJSON:
		out, err := rep.JSON()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", out)
	case t.CSV:
		fmt.Print(rep.CSV())
		if *breakdown {
			fmt.Print(rep.BreakdownCSV())
		}
	default:
		printReport(rep)
	}
	if *enforceSLO && !rep.SLOOK {
		log.Fatal("SLO missed")
	}
}

// applyPhases overrides named phase durations in place.
func applyPhases(w *serve.Workload, spec string) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(part, ":")
		if !ok {
			return fmt.Errorf("bad -phases entry %q (want name:cycles)", part)
		}
		cycles, err := strconv.ParseInt(val, 10, 64)
		if err != nil || cycles <= 0 {
			return fmt.Errorf("bad -phases duration %q", part)
		}
		found := false
		for i := range w.Phases {
			if w.Phases[i].Name == name {
				w.Phases[i].Cycles = sim.Time(cycles)
				found = true
			}
		}
		if !found {
			return fmt.Errorf("-phases: no phase named %q", name)
		}
	}
	return nil
}

// parseSLO parses "p99:2500000,p999:5000000" into an SLO.
func parseSLO(spec string) (serve.SLO, error) {
	var s serve.SLO
	if spec == "" {
		return s, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(part, ":")
		if !ok {
			return s, fmt.Errorf("bad -slo entry %q (want pXX:cycles)", part)
		}
		cycles, err := strconv.ParseFloat(val, 64)
		if err != nil || cycles <= 0 {
			return s, fmt.Errorf("bad -slo bound %q", part)
		}
		switch name {
		case "p50":
			s.P50 = cycles
		case "p99":
			s.P99 = cycles
		case "p999":
			s.P999 = cycles
		default:
			return s, fmt.Errorf("-slo: unknown quantile %q (want p50, p99, p999)", name)
		}
	}
	return s, nil
}

func printReport(rep serve.Report) {
	fmt.Printf("serve P=%d C=%d seed=%d theta=%g: %d requests (%d get / %d put / %d scan) in %d cycles\n",
		rep.P, rep.C, rep.Seed, rep.Theta, rep.Requests, rep.Gets, rep.Puts, rep.Scans, rep.Cycles)
	if rep.LockTotal > 0 {
		fmt.Printf("  shard locks: %d/%d served in-SSMP\n", rep.LockHits, rep.LockTotal)
	}
	if rep.Dropped > 0 || rep.Retransmit > 0 {
		fmt.Printf("  transport: %d dropped, %d retransmits\n", rep.Dropped, rep.Retransmit)
	}
	if b := rep.Breakdown; b != nil {
		fmt.Printf("  cost breakdown (%.1f attributed cycles/request):\n", b.PerRequestCycles)
		for _, row := range []struct {
			name   string
			cycles int64
		}{
			{"user", b.UserCycles}, {"lock", b.LockCycles}, {"barrier", b.BarrierCycles},
			{"protocol", b.ProtocolCycles}, {"transport", b.TransportCycles},
		} {
			fmt.Printf("    %-10s %14d cycles\n", row.name, row.cycles)
		}
		for _, hl := range b.HotLocks {
			fmt.Printf("    hot lock %-4d %14d cycles\n", hl.ID, hl.Cycles)
		}
	}
	fmt.Printf("  %-8s %6s %12s %12s %12s %12s\n", "phase", "count", "mean", "p50", "p99", "p999")
	for _, ps := range rep.Phases {
		mark := ""
		if !ps.SLOOK {
			mark = "  SLO MISS"
		}
		fmt.Printf("  %-8s %6d %12.1f %12.1f %12.1f %12.1f%s\n",
			ps.Phase, ps.Count, ps.Mean, ps.P50, ps.P99, ps.P999, mark)
	}
	if !rep.SLO.Empty() {
		status := "met"
		if !rep.SLOOK {
			status = "MISSED"
		}
		fmt.Printf("  SLO %s\n", status)
	}
}
