// mgs-check is the MGS model checker: it drives the real protocol
// implementation through every message-delivery interleaving of small
// fixed workloads (bounded-exhaustive, canonical-state pruned),
// checking protocol invariants at every delivery boundary and cross-
// checking each execution against the abstract Table 2/3 state
// machines (internal/check). A violation serializes as a choice trace
// that -replay re-executes deterministically.
//
// Usage:
//
//	mgs-check                            # explore every built-in workload
//	mgs-check -workloads write-share     # one workload
//	mgs-check -mutate -save cx.json      # find the seeded stale-WNOTIFY bug
//	mgs-check -replay cx.json -trace     # re-execute a counterexample, rendered
//	mgs-check -maxstates 100000 -json    # bounded run, JSON summary
//
// Exit status is nonzero if any exploration finds a violation (or a
// replayed trace fails to reproduce one).
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"mgs/internal/check"
	"mgs/internal/cli"
	"mgs/internal/harness"
	"mgs/internal/obs"
)

func main() {
	t := cli.New("mgs-check").SweepFlags().SyncFlags()
	var (
		workloads = flag.String("workloads", "all", "comma-separated workloads, or 'all': "+strings.Join(workloadNames(), ", "))
		mutate    = flag.Bool("mutate", false, "arm the seeded stale-WNOTIFY bug (mutation regression)")
		maxStates = flag.Int("maxstates", check.DefaultMaxStates, "canonical-state budget per workload")
		maxRuns   = flag.Int("maxruns", check.DefaultMaxRuns, "schedule budget per workload")
		maxDepth  = flag.Int("maxdepth", check.DefaultMaxDepth, "choice-depth budget per run")
		save      = flag.String("save", "", "write the first counterexample trace to this file")
		replay    = flag.String("replay", "", "re-execute a saved counterexample trace instead of exploring")
		trace     = flag.Bool("trace", false, "with -replay: render every protocol event")
		asJSON    = flag.Bool("json", false, "emit a JSON summary instead of formatted output")
	)
	t.Parse()

	if *replay != "" {
		runReplay(*replay, *trace, *asJSON)
		return
	}

	var ws []check.Workload
	if *workloads == "all" {
		ws = check.Workloads()
	} else {
		for _, name := range strings.Split(*workloads, ",") {
			w, ok := check.Lookup(strings.TrimSpace(name))
			if !ok {
				log.Fatalf("unknown workload %q (have: %s)", name, strings.Join(workloadNames(), ", "))
			}
			ws = append(ws, w)
		}
	}

	// One exploration per workload; each is single-threaded and fully
	// deterministic, so parallelism across workloads cannot change any
	// result (-workers only changes wall-clock time).
	results := make([]check.Result, len(ws))
	errs := harness.RunIndexed(len(ws), func(i int) error {
		res, err := check.Explore(check.Options{
			Workload:  ws[i],
			Mutate:    *mutate,
			MaxStates: *maxStates,
			MaxRuns:   *maxRuns,
			MaxDepth:  *maxDepth,
		})
		results[i] = res
		return err
	})
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	bad := 0
	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			log.Fatal(err)
		}
	case t.CSV:
		w := csv.NewWriter(os.Stdout)
		w.Write([]string{"workload", "runs", "states", "choices", "max_fanout", "complete", "violation"})
		for _, r := range results {
			vio := ""
			if r.Violation != nil {
				vio = r.Violation.String()
			}
			w.Write([]string{r.Workload, strconv.Itoa(r.Runs), strconv.Itoa(r.States),
				strconv.Itoa(r.Choices), strconv.Itoa(r.MaxFanout),
				strconv.FormatBool(r.Complete), vio})
		}
		w.Flush()
	default:
		fmt.Printf("%-14s %8s %8s %8s %7s %9s  %s\n",
			"workload", "runs", "states", "choices", "fanout", "complete", "result")
		for _, r := range results {
			verdict := "ok"
			if r.Violation != nil {
				verdict = r.Violation.String()
			}
			fmt.Printf("%-14s %8d %8d %8d %7d %9v  %s\n",
				r.Workload, r.Runs, r.States, r.Choices, r.MaxFanout, r.Complete, verdict)
		}
	}
	for _, r := range results {
		if r.Violation == nil {
			continue
		}
		bad++
		if *save != "" {
			if err := r.Violation.Trace.Save(*save); err != nil {
				log.Fatal(err)
			}
			log.Printf("counterexample written to %s (replay with -replay %s)", *save, *save)
			*save = "" // first violation only
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// runReplay re-executes a saved counterexample and reports whether it
// still reproduces its violation. Exit status: 0 when the recorded
// violation reproduces, 1 when the run is clean or reproduces a
// different violation.
func runReplay(path string, render, asJSON bool) {
	tr, err := check.LoadTrace(path)
	if err != nil {
		log.Fatal(err)
	}
	var sink obs.Sink
	if render {
		sink = obs.NewTextSink(os.Stdout)
	}
	v, err := check.Replay(tr, sink)
	if err != nil {
		log.Fatal(err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Trace      check.Trace      `json:"trace"`
			Reproduced *check.Violation `json:"reproduced"`
		}{tr, v})
	}
	switch {
	case v == nil:
		fmt.Printf("%s: clean run — the recorded violation no longer reproduces\n", path)
		os.Exit(1)
	case tr.Violation != "" && (v.Kind != tr.Kind || v.Msg != tr.Violation):
		fmt.Printf("%s: reproduced a DIFFERENT violation:\n  recorded: %s: %s\n  got:      %s\n",
			path, tr.Kind, tr.Violation, v)
		os.Exit(1)
	default:
		fmt.Printf("%s: reproduced %s\n", path, v)
	}
}

func workloadNames() []string {
	var names []string
	for _, w := range check.Workloads() {
		names = append(names, w.Name)
	}
	return names
}
