// Command mgslint runs the internal/lint analyzer suite (see DESIGN.md
// §"Static invariants"). It operates in two modes:
//
// Standalone, for CI and local use:
//
//	mgslint [-json] [packages...]
//
// resolves the package patterns (default ./...) with `go list`, builds
// export data for every dependency with `go list -export -deps`, then
// type-checks and analyzes each target package. Diagnostics go to
// stdout (plain or, with -json, as a JSON array); the exit status is 1
// if any diagnostic fired and 0 otherwise.
//
// Vettool, speaking cmd/go's unitchecker protocol:
//
//	go vet -vettool=$(command -v mgslint) ./...
//
// cmd/go probes the tool with -V=full (cache key) and -flags (accepted
// flags), then invokes it once per package with a single *.cfg argument
// describing the compilation unit. Diagnostics go to stderr and the
// exit status is 2, matching golang.org/x/tools/go/analysis/unitchecker
// (which this reimplements on the standard library alone, because the
// module cache does not carry x/tools).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"mgs/internal/lint"
	"mgs/internal/lint/analysis"
)

func main() {
	// cmd/go's vettool probes come before flag parsing.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		printVersion()
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		printFlagDefs()
		return
	}
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log on stdout")
	flag.Parse()
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(args[0]))
	}
	os.Exit(runStandalone(args, *jsonOut, *sarifOut))
}

// inModule reports whether the import path (possibly a test variant
// like "mgs/internal/sim [mgs/internal/sim.test]") belongs to the mgs
// module — the only packages whose facts the analyzers consult.
func inModule(path string) bool {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	return path == "mgs" || strings.HasPrefix(path, "mgs/")
}

// printVersion answers -V=full. cmd/go parses "<name> version <...>"
// and folds the whole line into its action cache key, so the hash of
// the executable itself is included: rebuilding mgslint invalidates
// cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("mgslint version devel buildID=%x\n", h.Sum(nil))
}

// printFlagDefs answers -flags: the JSON flag inventory cmd/go uses to
// decide which `go vet` flags it may forward to the tool.
func printFlagDefs() {
	type flagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []flagDef{
		{Name: "json", Bool: true, Usage: "emit diagnostics as a JSON array on stdout"},
		{Name: "sarif", Bool: true, Usage: "emit diagnostics as a SARIF 2.1.0 log on stdout"},
	}
	json.NewEncoder(os.Stdout).Encode(defs)
}

// ---------------------------------------------------------------------
// Vettool mode: the unitchecker protocol.

// vetConfig is the compilation-unit description cmd/go writes to the
// *.cfg file (a subset of the fields; unknown ones are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mgslint: %v\n", err)
		return 1
	}
	cfg := &vetConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mgslint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Packages outside the mgs module carry no //mgs annotations and no
	// facts the analyzers consult; cmd/go still requires the vetx file
	// to exist, so give it an empty one without type-checking.
	if !inModule(cfg.ImportPath) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "mgslint: %v\n", err)
				return 1
			}
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return typecheckFailed(cfg, err)
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := &mapImporter{
		importMap: cfg.ImportMap,
		gc: importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
			file, ok := cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
	}
	info := lint.NewTypesInfo()
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailed(cfg, err)
	}
	// Dependency facts come from the .vetx files cmd/go already built
	// (it schedules units in dependency order, threading outputs through
	// PackageVetx).
	imported := func(path string) *analysis.PackageFacts {
		file, ok := cfg.PackageVetx[path]
		if !ok {
			return nil
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return nil
		}
		pf, err := analysis.DecodeFacts(data)
		if err != nil {
			return nil
		}
		return pf
	}
	diags, facts, err := lint.RunPackage(fset, files, pkg, info, imported)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mgslint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		data, err := analysis.EncodeFacts(facts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mgslint: %v\n", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "mgslint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // analyzed only for the facts dependents need
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typecheckFailed handles parse/type errors under the protocol: when
// cmd/go knows the package is otherwise being compiled it sets
// SucceedOnTypecheckFailure so the compiler, not the vet tool, reports
// the error.
func typecheckFailed(cfg *vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	fmt.Fprintf(os.Stderr, "mgslint: %s: %v\n", cfg.ImportPath, err)
	return 1
}

// mapImporter resolves import paths through the unit's ImportMap
// (vendoring, test variants) before delegating to the gc importer's
// export-data lookup.
type mapImporter struct {
	importMap map[string]string
	gc        types.Importer
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if canon, ok := m.importMap[path]; ok {
		path = canon
	}
	return m.gc.Import(path)
}

// ---------------------------------------------------------------------
// Standalone mode: resolve packages with the go tool, analyze in-process.

type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func runStandalone(patterns []string, jsonOut, sarifOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// One -deps pass compiles every dependency (harvesting export data
	// for type-checking) and yields the packages in dependency order, so
	// each module package's facts exist before any dependent needs them.
	// DepOnly marks dependencies that did not match the patterns: they
	// are analyzed for facts but their diagnostics are not reported.
	type listPkg struct {
		ImportPath string
		Dir        string
		GoFiles    []string
		Export     string
		Standard   bool
		DepOnly    bool
	}
	exports := map[string]string{}
	var pkgs []listPkg
	if err := goList(append([]string{"-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly"}, patterns...),
		func(dec *json.Decoder) error {
			var p listPkg
			if err := dec.Decode(&p); err != nil {
				return err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
			if !p.Standard && inModule(p.ImportPath) {
				pkgs = append(pkgs, p)
			}
			return nil
		}); err != nil {
		fmt.Fprintf(os.Stderr, "mgslint: %v\n", err)
		return 1
	}

	fset := token.NewFileSet()
	imp := &mapImporter{gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})}

	facts := map[string]*analysis.PackageFacts{}
	imported := func(path string) *analysis.PackageFacts { return facts[path] }

	exit := 0
	var all []jsonDiag
	for _, t := range pkgs {
		var files []*ast.File
		parseOK := true
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mgslint: %v\n", err)
				exit, parseOK = 1, false
				break
			}
			files = append(files, f)
		}
		if !parseOK || len(files) == 0 {
			continue
		}
		info := lint.NewTypesInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mgslint: %s: %v\n", t.ImportPath, err)
			exit = 1
			continue
		}
		diags, pf, err := lint.RunPackage(fset, files, pkg, info, imported)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mgslint: %s: %v\n", t.ImportPath, err)
			exit = 1
			continue
		}
		facts[t.ImportPath] = pf
		if t.DepOnly {
			continue
		}
		for _, d := range diags {
			all = append(all, toJSONDiag(fset, d))
		}
	}

	switch {
	case sarifOut:
		writeSARIF(os.Stdout, all)
	case jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if all == nil {
			all = []jsonDiag{}
		}
		enc.Encode(all)
	default:
		for _, d := range all {
			fmt.Printf("%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(all) > 0 && exit == 0 {
		exit = 1
	}
	return exit
}

// writeSARIF emits the diagnostics as a minimal SARIF 2.1.0 log — the
// format code-scanning UIs ingest. One run, one rule per analyzer,
// every diagnostic an error-level result.
func writeSARIF(w io.Writer, diags []jsonDiag) {
	type sarifMsg struct {
		Text string `json:"text"`
	}
	type sarifRule struct {
		ID   string   `json:"id"`
		Desc sarifMsg `json:"shortDescription"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn"`
	}
	type sarifLocation struct {
		PhysicalLocation struct {
			ArtifactLocation struct {
				URI string `json:"uri"`
			} `json:"artifactLocation"`
			Region sarifRegion `json:"region"`
		} `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMsg        `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	rules := []sarifRule{{ID: "mgslint-allow", Desc: sarifMsg{Text: "defective //mgslint:allow comment (unjustified, unknown analyzer, or dead)"}}}
	for _, a := range lint.All() {
		rules = append(rules, sarifRule{ID: a.Name, Desc: sarifMsg{Text: a.Doc}})
	}
	results := []sarifResult{}
	for _, d := range diags {
		r := sarifResult{RuleID: d.Analyzer, Level: "error", Message: sarifMsg{Text: d.Message}}
		var loc sarifLocation
		loc.PhysicalLocation.ArtifactLocation.URI = filepath.ToSlash(d.File)
		loc.PhysicalLocation.Region = sarifRegion{StartLine: d.Line, StartColumn: d.Col}
		r.Locations = []sarifLocation{loc}
		results = append(results, r)
	}
	log := map[string]any{
		"$schema": "https://json.schemastore.org/sarif-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]any{{
			"tool": map[string]any{"driver": map[string]any{
				"name":  "mgslint",
				"rules": rules,
			}},
			"results": results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(log)
}

func toJSONDiag(fset *token.FileSet, d analysis.Diagnostic) jsonDiag {
	pos := fset.Position(d.Pos)
	file := pos.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return jsonDiag{Analyzer: d.Analyzer, File: file, Line: pos.Line, Col: pos.Column, Message: d.Message}
}

// goList streams `go list <args>` output through decode.
func goList(args []string, decode func(*json.Decoder) error) error {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	dec := json.NewDecoder(out)
	for dec.More() {
		if err := decode(dec); err != nil {
			cmd.Wait()
			return err
		}
	}
	return cmd.Wait()
}
