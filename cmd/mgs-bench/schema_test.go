package main

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"sort"
	"testing"
)

// keyPaths flattens a decoded JSON value into its set of key paths
// (arrays contribute their element shape once), the structural schema
// of the document.
func keyPaths(v any, prefix string, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			keyPaths(child, prefix+"."+k, out)
		}
	case []any:
		if len(x) == 0 {
			out[prefix+"[]"] = true
			return
		}
		keyPaths(x[0], prefix+"[]", out)
	default:
		out[prefix] = true
	}
}

func sortedPaths(data []byte, t *testing.T) []string {
	t.Helper()
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	m := map[string]bool{}
	keyPaths(v, "", m)
	paths := make([]string, 0, len(m))
	for p := range m {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// TestCommittedReportSchema guards the committed BENCH_sim.json against
// schema drift in either direction: the file must decode into Report
// with no unknown fields (the file is not ahead of the code), and
// re-encoding the decoded report must produce the same key paths (the
// file is not behind the code — a new Report field fails here until the
// file is regenerated).
func TestCommittedReportSchema(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_sim.json")
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_sim.json does not match the Report schema: %v", err)
	}
	enc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, want := sortedPaths(raw, t), sortedPaths(enc, t)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BENCH_sim.json schema drifted from the Report type:\nfile: %v\ncode: %v\nregenerate with: go run ./cmd/mgs-bench", got, want)
	}
}

// TestCommittedReportContents pins the parts of the committed report
// downstream tracking keys on: the benchmark suite and the engine
// speedup curve's worker counts.
func TestCommittedReportContents(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_sim.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	wantBench := []string{
		"TLBLookup", "ComputeDiffClean", "ComputeDiffSparse",
		"ComputeDiffDense", "ComputeDiffOwned", "EngineDispatch", "AccessFastPath",
	}
	var names []string
	for _, b := range rep.Benchmarks {
		names = append(names, b.Name)
		switch b.Name {
		case "ComputeDiffClean", "ComputeDiffSparse", "ComputeDiffDense":
			if b.AllocsPerOp != 0 {
				t.Errorf("%s: committed report records %d allocs/op; the buffered diff path must be allocation-free", b.Name, b.AllocsPerOp)
			}
		case "ComputeDiffOwned":
			if b.AllocsPerOp > 2 {
				t.Errorf("%s: committed report records %d allocs/op; the owned form's budget is the clone's 2", b.Name, b.AllocsPerOp)
			}
		}
	}
	if !reflect.DeepEqual(names, wantBench) {
		t.Errorf("benchmark suite drifted: %v, want %v", names, wantBench)
	}
	var workers []int
	for _, pt := range rep.Engine.Points {
		workers = append(workers, pt.Workers)
	}
	if !reflect.DeepEqual(workers, []int{1, 2, 4, 8}) {
		t.Errorf("engine curve worker counts drifted: %v, want [1 2 4 8]", workers)
	}
	if rep.Engine.NumCPU < 1 || rep.Engine.Note == "" {
		t.Error("engine curve must record its host context (num_cpu, note)")
	}
	var scaleP []int
	for _, sc := range rep.Scale {
		scaleP = append(scaleP, sc.P)
		if sc.Topology != "tiered" {
			t.Errorf("scale P=%d ran on %q, want tiered", sc.P, sc.Topology)
		}
		if len(sc.Points) < 3 {
			t.Errorf("scale P=%d: %d points, want the framework's minimum of 3", sc.P, len(sc.Points))
		}
		for _, pt := range sc.Points {
			if pt.DirPages > 0 && pt.DirRmt > 8*pt.DirPages {
				t.Errorf("scale P=%d C=%d: committed report records a non-sparse directory (%d entries / %d pages)",
					sc.P, pt.C, pt.DirRmt, pt.DirPages)
			}
			if pt.DirPages > 0 && pt.DenseBytes <= pt.DirBytes {
				t.Errorf("scale P=%d C=%d: dense equivalent %dB not above measured %dB",
					sc.P, pt.C, pt.DenseBytes, pt.DirBytes)
			}
		}
	}
	if !reflect.DeepEqual(scaleP, []int{256, 1024}) {
		t.Errorf("scale curve machine sizes drifted: %v, want [256 1024]", scaleP)
	}
}
