// mgs-bench measures the simulator's host-side performance — the hot
// paths a sweep spends its wall-clock in — and writes the results to a
// JSON file for tracking across commits.
//
// Usage:
//
//	mgs-bench                      # full suite → BENCH_sim.json
//	mgs-bench -small -out /tmp/b.json
//	mgs-bench -app water -p 32
//
// The microbenchmarks cover the software-TLB lookup, the twin/diff
// kernel, event dispatch, and the end-to-end shared-memory access fast
// path. The sweep section times one figure sweep sequentially and with
// the parallel runner; on a single-core host the two coincide. The
// engine section times one simulation under the sharded event
// dispatcher at -engine-workers 1, 2, 4, and 8, verifying that the
// simulated cycle count is identical at every setting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"mgs/internal/cli"
	"mgs/internal/core"
	"mgs/internal/exp"
	"mgs/internal/harness"
	"mgs/internal/msg"
	"mgs/internal/sim"
	"mgs/internal/vm"
)

// BenchResult is one microbenchmark's outcome.
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// SweepResult times one figure sweep under both runners.
type SweepResult struct {
	App        string  `json:"app"`
	P          int     `json:"p"`
	GoMaxProcs int     `json:"gomaxprocs"`
	SeqSeconds float64 `json:"seq_seconds"`
	ParSeconds float64 `json:"par_seconds"`
	Speedup    float64 `json:"speedup"`
}

// EnginePoint times one simulation under the sharded event dispatcher
// at a given worker count. Speedup is relative to the workers=1 run of
// the same curve; the simulated cycle count is identical at every
// worker count (main aborts if not).
type EnginePoint struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup"`
}

// EngineResult is the engine-parallelism speedup curve: one simulation
// (not a sweep) repeated at increasing -engine-workers settings.
type EngineResult struct {
	App        string        `json:"app"`
	P          int           `json:"p"`
	C          int           `json:"c"`
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Note       string        `json:"note"`
	Points     []EnginePoint `json:"points"`
}

// ScaleDirPoint is one cluster size of a thousand-processor scale
// curve: execution time, link contention, and the Server's directory
// footprint at end of run.
type ScaleDirPoint struct {
	C          int   `json:"c"`
	Cycles     int64 `json:"cycles"`
	LinkWait   int64 `json:"link_wait"`
	DirPages   int   `json:"dir_pages"`
	DirRmt     int   `json:"dir_rmt_entries"`
	DirCoarse  int   `json:"dir_coarse_pages"`
	DirBytes   int64 `json:"dir_bytes"`
	DenseBytes int64 `json:"dense_equiv_bytes"`
}

// ScaleResult is one P's scale curve on the tiered topology, with the
// §2.4 framework metrics and the directory-memory measurement the
// hierarchical coarse-vector directory exists for: dir_bytes versus
// what a dense per-SSMP directory would occupy on the same run.
type ScaleResult struct {
	App                 string          `json:"app"`
	Topology            string          `json:"topology"`
	P                   int             `json:"p"`
	Seconds             float64         `json:"seconds"`
	BreakupPenalty      float64         `json:"breakup_penalty"`
	MultigrainPotential float64         `json:"multigrain_potential"`
	Note                string          `json:"note"`
	Points              []ScaleDirPoint `json:"points"`
}

// Report is the file schema of BENCH_sim.json.
type Report struct {
	Benchmarks []BenchResult `json:"benchmarks"`
	Sweep      SweepResult   `json:"sweep"`
	Engine     EngineResult  `json:"engine"`
	Scale      []ScaleResult `json:"scale"`
}

func bench(name string, fn func(b *testing.B)) BenchResult {
	r := testing.Benchmark(fn)
	return BenchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// diffPage builds a 1K twin/current pair with the bytes selected by
// changed mutated.
func diffPage(changed func(i int) bool) (twin, cur []byte) {
	twin = make([]byte, 1024)
	cur = make([]byte, 1024)
	for i := range twin {
		twin[i] = byte(i * 7)
		cur[i] = twin[i]
		if changed(i) {
			cur[i] ^= 0xFF
		}
	}
	return twin, cur
}

var diffSink core.Diff

// benchDiff measures the steady-state diff path: a warmed DiffBuf, as
// the protocol's pooled release rounds use it. main refuses to write a
// report where these allocate — zero allocs per op is a contract, not
// an observation.
func benchDiff(changed func(i int) bool) func(b *testing.B) {
	return func(b *testing.B) {
		twin, cur := diffPage(changed)
		var buf core.DiffBuf
		buf.Compute(twin, cur)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			diffSink = buf.Compute(twin, cur)
		}
	}
}

// benchDiffOwned measures the throwaway form (core.ComputeDiff): scratch
// from the pool, an exact-size owned clone out. Its contract is two
// allocations per op — the clone's range headers and payload slab —
// never the cold buffer's growth walk.
func benchDiffOwned(b *testing.B) {
	twin, cur := diffPage(func(i int) bool { return i%128 < 8 })
	core.ComputeDiff(twin, cur) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diffSink = core.ComputeDiff(twin, cur)
	}
}

var privSink vm.Priv

func benchTLB(b *testing.B) {
	t := vm.NewTLB(64)
	for i := 0; i < 64; i++ {
		t.Insert(vm.Page(i), vm.Read)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, _ := t.Lookup(vm.Page(i & 63))
		privSink = p
	}
}

func benchDispatch(b *testing.B) {
	e := sim.NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(1, step)
		}
	}
	b.ReportAllocs()
	e.At(0, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// homedAddr returns an address on a page interleave-homed on processor
// 0, so proc 0's post-fault accesses stay on the hit path.
func homedAddr(m *harness.Machine) vm.Addr {
	va := m.Alloc(2 * m.Cfg.PageSize)
	if int(m.DSM.Space().PageOf(va))%m.Cfg.P != 0 {
		va += vm.Addr(m.Cfg.PageSize)
	}
	return va
}

func benchAccess(b *testing.B) {
	m := harness.NewMachine(harness.NewConfig(2, 1))
	va := homedAddr(m)
	b.ReportAllocs()
	if _, err := m.RunPer(func(i int) func(c *harness.Ctx) {
		if i != 0 {
			return func(*harness.Ctx) {}
		}
		return func(c *harness.Ctx) {
			c.LoadI64(va)
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				c.LoadI64(va)
			}
			b.StopTimer()
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// checkApp reports whether mk knows the named app (the exp constructors
// panic on unknown names).
func checkApp(mk func(string) harness.App, name string) (err error) {
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("unknown app %q", name)
		}
	}()
	mk(name)
	return nil
}

// timeSweep runs one figure sweep at the given worker setting and
// reports the wall-clock plus the summed cycle count (a checksum the
// caller compares across runner modes).
func timeSweep(app string, p int, mk func(string) harness.App, w int) (float64, sim.Time, error) {
	old := harness.SweepWorkers
	harness.SweepWorkers = w
	defer func() { harness.SweepWorkers = old }()
	start := time.Now()
	points, _, err := exp.FigureSweep(app, p, mk)
	if err != nil {
		return 0, 0, err
	}
	var sum sim.Time
	for _, pt := range points {
		sum += pt.Res.Cycles
	}
	return time.Since(start).Seconds(), sum, nil
}

// engineCurve runs one simulation repeatedly under increasing engine
// worker counts, timing each run and checking that the simulated cycle
// count never moves — the dispatcher's bit-identity contract, measured
// rather than assumed.
func engineCurve(app string, p int, mk func(string) harness.App, counts []int) (EngineResult, error) {
	// Four processors per SSMP gives p/4 shards for the dispatcher to
	// spread across workers; machines too small for that shape run with
	// single-processor SSMPs instead.
	c := 4
	if p < 8 || p%4 != 0 {
		c = 1
	}
	res := EngineResult{
		App: app, P: p, C: c,
		NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "speedup is wall-clock relative to workers=1; simulated cycles are bit-identical at every worker count",
	}
	if max := counts[len(counts)-1]; res.NumCPU < max {
		res.Note += fmt.Sprintf("; host has %d CPU(s), so worker counts beyond that time-slice cores and measure dispatcher overhead, not parallel capacity", res.NumCPU)
	}
	var refCycles sim.Time
	for i, w := range counts {
		cfg := exp.Config(p, c, harness.WithEngineWorkers(w))
		start := time.Now()
		r, err := harness.RunApp(mk(app), cfg)
		if err != nil {
			return res, fmt.Errorf("engine curve workers=%d: %w", w, err)
		}
		secs := time.Since(start).Seconds()
		if i == 0 {
			refCycles = r.Cycles
		} else if r.Cycles != refCycles {
			return res, fmt.Errorf("engine curve diverged: workers=%d ran %d cycles, workers=%d ran %d",
				counts[0], refCycles, w, r.Cycles)
		}
		pt := EnginePoint{Workers: w, Seconds: secs, Speedup: 1}
		if i > 0 {
			pt.Speedup = res.Points[0].Seconds / secs
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// scaleCurve runs the thousand-processor scale experiment at one P on
// the tiered LAN/WAN topology and distills the framework metrics plus
// the directory-memory measurement. It refuses to report a run where
// the directory footprint grew past a small multiple of the page count
// — O(sharers) is a contract, not an observation.
func scaleCurve(app string, p int) (ScaleResult, error) {
	topo := msg.NewTiered(0)
	start := time.Now()
	points, m, err := exp.ScaleSweep(app, p, topo, exp.ScaleClusterSizes(p))
	if err != nil {
		return ScaleResult{}, err
	}
	res := ScaleResult{
		App: app, Topology: "tiered", P: p,
		Seconds:             time.Since(start).Seconds(),
		BreakupPenalty:      m.BreakupPenalty,
		MultigrainPotential: m.MultigrainPotential,
		Note: "dir_bytes is the hierarchical directory's footprint (O(sharers) per page); " +
			"dense_equiv_bytes is what one record per SSMP per page would occupy",
	}
	for _, pt := range points {
		nssmp := p / pt.C
		res.Points = append(res.Points, ScaleDirPoint{
			C: pt.C, Cycles: int64(pt.Cycles), LinkWait: pt.LinkWait,
			DirPages: pt.Dir.Pages, DirRmt: pt.Dir.RmtEntries,
			DirCoarse: pt.Dir.CoarsePages, DirBytes: pt.Dir.Bytes,
			DenseBytes: pt.Dir.DenseBytes(nssmp),
		})
		if pt.Dir.Pages > 0 && pt.Dir.RmtEntries > 8*pt.Dir.Pages {
			return res, fmt.Errorf("scale P=%d C=%d: directory not O(sharers): %d entries for %d pages",
				p, pt.C, pt.Dir.RmtEntries, pt.Dir.Pages)
		}
	}
	return res, nil
}

func main() {
	t := cli.New("mgs-bench").MachineFlags("water", 32, 0, false)
	out := flag.String("out", "BENCH_sim.json", "output file")
	t.Parse()

	mk := t.Apps()
	if err := checkApp(mk, t.App); err != nil {
		log.Fatal(err) // fail before the benchmarks burn 20s
	}

	rep := Report{
		Benchmarks: []BenchResult{
			bench("TLBLookup", benchTLB),
			bench("ComputeDiffClean", benchDiff(func(int) bool { return false })),
			bench("ComputeDiffSparse", benchDiff(func(i int) bool { return i%128 < 8 })),
			bench("ComputeDiffDense", benchDiff(func(int) bool { return true })),
			bench("ComputeDiffOwned", benchDiffOwned),
			bench("EngineDispatch", benchDispatch),
			bench("AccessFastPath", benchAccess),
		},
	}
	for _, b := range rep.Benchmarks {
		fmt.Printf("  %-20s %10.2f ns/op %6d B/op %4d allocs/op\n",
			b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
		switch {
		case b.Name == "ComputeDiffOwned":
			if b.AllocsPerOp > 2 {
				log.Fatalf("%s allocated %d times per op; the owned form's budget is the clone's 2 (headers + slab)", b.Name, b.AllocsPerOp)
			}
		case strings.HasPrefix(b.Name, "ComputeDiff"):
			if b.AllocsPerOp != 0 {
				log.Fatalf("%s allocated %d times per op; the buffered diff path must be allocation-free", b.Name, b.AllocsPerOp)
			}
		}
	}

	seqS, seqSum, err := timeSweep(t.App, t.P, mk, 1)
	if err != nil {
		log.Fatal(err)
	}
	parS, parSum, err := timeSweep(t.App, t.P, mk, 0)
	if err != nil {
		log.Fatal(err)
	}
	if seqSum != parSum {
		log.Fatalf("parallel sweep diverged: seq cycles %d, par cycles %d", seqSum, parSum)
	}
	rep.Sweep = SweepResult{
		App: t.App, P: t.P, GoMaxProcs: runtime.GOMAXPROCS(0),
		SeqSeconds: seqS, ParSeconds: parS, Speedup: seqS / parS,
	}
	fmt.Printf("  sweep %s P=%d: seq %.2fs, par %.2fs (%.2fx, GOMAXPROCS=%d)\n",
		t.App, t.P, seqS, parS, seqS/parS, rep.Sweep.GoMaxProcs)

	eng, err := engineCurve(t.App, t.P, mk, []int{1, 2, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	rep.Engine = eng
	fmt.Printf("  engine %s P=%d C=%d (NumCPU=%d):", eng.App, eng.P, eng.C, eng.NumCPU)
	for _, pt := range eng.Points {
		fmt.Printf("  w=%d %.2fs (%.2fx)", pt.Workers, pt.Seconds, pt.Speedup)
	}
	fmt.Println()

	for _, p := range []int{256, 1024} {
		sc, err := scaleCurve("jacobi", p)
		if err != nil {
			log.Fatal(err)
		}
		rep.Scale = append(rep.Scale, sc)
		soft := sc.Points[0]
		fmt.Printf("  scale jacobi P=%d tiered: %.2fs, breakup %.0f%%, potential %.0f%%, dir %dB vs dense %dB at C=1\n",
			p, sc.Seconds, sc.BreakupPenalty*100, sc.MultigrainPotential*100, soft.DirBytes, soft.DenseBytes)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
