// mgs-trace runs an application with the protocol tracer attached and
// prints the MGS protocol event stream — the tool used to diagnose
// every protocol race found while building this system.
//
// Usage:
//
//	mgs-trace -app water -p 8 -c 2 [-page 5] [-from 0] [-to 1e9] [-max 500]
//	mgs-trace -app water -faults -fseed 7 [-fdrop 300] [-fdup 100] [-fdelay 500]
//
// With -faults, a seeded fault plan (internal/fault) is attached to the
// transport and injector events (DROP/DUP/DELAY/TIMEOUT/ACK...) print
// interleaved with the protocol events — the view that shows which
// retransmission provoked which protocol transition.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"mgs/internal/exp"
	"mgs/internal/fault"
	"mgs/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mgs-trace: ")
	var (
		app   = flag.String("app", "water", "application to trace")
		p     = flag.Int("p", 8, "total processors")
		c     = flag.Int("c", 2, "processors per SSMP")
		page  = flag.Int64("page", -1, "only events for this page (-1: all)")
		from  = flag.Int64("from", 0, "suppress events before this cycle")
		to    = flag.Int64("to", 1<<62, "suppress events after this cycle")
		max   = flag.Int("max", 500, "stop printing after this many events")
		small  = flag.Bool("small", true, "use reduced problem sizes")
		faults = flag.Bool("faults", false, "attach a fault plan and trace injector events too")
		fseed  = flag.Uint64("fseed", 1, "fault plan seed")
		fdrop  = flag.Int("fdrop", 300, "drop rate, basis points")
		fdup   = flag.Int("fdup", 100, "duplication rate, basis points")
		fdelay = flag.Int("fdelay", 500, "delay rate, basis points")
	)
	flag.Parse()

	mk := exp.NewApp
	if *small {
		mk = exp.SmallApp
	}
	a := mk(*app)
	cfg := exp.Config(*p, *c)
	if *faults {
		cfg.Fault = fault.Plan{Seed: *fseed, DropBP: *fdrop, DupBP: *fdup, DelayBP: *fdelay}
	}
	m := harness.NewMachine(cfg)
	printed := 0
	filter := ""
	if *page >= 0 {
		filter = fmt.Sprintf("page=%d ", *page)
	}
	emit := func(f string, args ...any) {
		if printed >= *max {
			return
		}
		line := fmt.Sprintf(f, args...)
		if filter != "" && !strings.Contains(line, filter) {
			return
		}
		var t int64
		fmt.Sscanf(line, "t=%d", &t)
		if t < *from || t > *to {
			return
		}
		printed++
		fmt.Println(line)
	}
	m.DSM.TraceFn = emit
	if *faults {
		m.Net.TraceFn = emit
	}
	a.Setup(m)
	res, err := m.Run(a.Body)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Verify(m); err != nil {
		log.Fatalf("verification: %v", err)
	}
	fmt.Printf("-- %d events printed; run took %s cycles\n", printed, comma(int64(res.Cycles)))
}

// comma renders n with thousands separators.
func comma(n int64) string {
	s := fmt.Sprintf("%d", n)
	var b strings.Builder
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	return b.String()
}
