// mgs-trace runs an application with the observability spine attached
// and prints the unified MGS event stream — protocol transitions,
// synchronization operations, and (with -faults) transport fates, all
// on one virtual-time axis. This is the tool used to diagnose every
// protocol race found while building this system.
//
// Usage:
//
//	mgs-trace -app water -p 8 -c 2 [-page 5] [-from 0] [-to 1e9] [-max 500]
//	mgs-trace -app water -cat protocol,transport
//	mgs-trace -app water -faults -fseed 7 [-fdrop 300] [-fdup 100] [-fdelay 500]
//	mgs-trace -app water -chrome trace.json
//
// With -faults, a seeded fault plan (internal/fault) is attached to the
// transport and injector events (DROP/DUP/DELAY/TIMEOUT/ACK...) print
// interleaved with the protocol events — the view that shows which
// retransmission provoked which protocol transition.
//
// With -chrome, the same (filtered) event stream is additionally
// exported as Chrome trace_event JSON — open it in chrome://tracing or
// https://ui.perfetto.dev to see one track per processor plus one per
// software engine, timestamped in virtual cycles.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mgs/internal/cli"
	"mgs/internal/fault"
	"mgs/internal/harness"
	"mgs/internal/obs"
)

func main() {
	t := cli.New("mgs-trace").MachineFlags("water", 8, 2, true)
	var (
		page   = flag.Int64("page", -1, "only events for this page (-1: all)")
		from   = flag.Int64("from", 0, "suppress events before this cycle")
		to     = flag.Int64("to", 1<<62, "suppress events after this cycle")
		max    = flag.Int("max", 500, "stop printing after this many events")
		cats   = flag.String("cat", "", "comma-separated categories (protocol, transport, sync, engine; empty: all)")
		chrome = flag.String("chrome", "", "also write the filtered stream as Chrome trace JSON to this file")
		faults = flag.Bool("faults", false, "attach a fault plan and trace injector events too")
		fseed  = flag.Uint64("fseed", 1, "fault plan seed")
		fdrop  = flag.Int("fdrop", 300, "drop rate, basis points")
		fdup   = flag.Int("fdup", 100, "duplication rate, basis points")
		fdelay = flag.Int("fdelay", 500, "delay rate, basis points")
	)
	t.Parse()

	keepCat, err := catFilter(*cats)
	if err != nil {
		log.Fatal(err)
	}

	text := obs.NewTextSink(os.Stdout)
	var chromeSink *obs.ChromeSink
	sink := obs.Sink(text)
	if *chrome != "" {
		chromeSink = obs.NewChromeSink(t.P)
		sink = obs.FuncSink(func(e obs.Event) {
			text.Emit(e)
			chromeSink.Emit(e)
		})
	}
	keep := func(e obs.Event) bool {
		if text.Count >= *max {
			return false
		}
		if !keepCat[e.Cat] {
			return false
		}
		if *page >= 0 && !(e.Kind == obs.ObjPage && e.ID == *page) {
			return false
		}
		return int64(e.T) >= *from && int64(e.T) <= *to
	}

	opts := []harness.Option{harness.WithObserver(obs.New().AddSink(obs.Filter(sink, keep)))}
	if *faults {
		opts = append(opts, harness.WithFaultPlan(
			fault.Plan{Seed: *fseed, DropBP: *fdrop, DupBP: *fdup, DelayBP: *fdelay}))
	}
	m := harness.NewMachine(t.Config(opts...))
	a := t.Apps()(t.App)
	a.Setup(m)
	res, err := m.Run(a.Body)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Verify(m); err != nil {
		log.Fatalf("verification: %v", err)
	}
	if chromeSink != nil {
		f, err := os.Create(*chrome)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := chromeSink.WriteTo(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- wrote %s (%d events)\n", *chrome, chromeSink.Len())
	}
	fmt.Printf("-- %d events printed; run took %s cycles\n", text.Count, comma(int64(res.Cycles)))
}

// catFilter parses the -cat list into a per-category keep set.
func catFilter(list string) (map[obs.Cat]bool, error) {
	keep := make(map[obs.Cat]bool)
	if list == "" {
		for c := obs.Cat(0); c < obs.NumCats; c++ {
			keep[c] = true
		}
		return keep, nil
	}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		found := false
		for c := obs.Cat(0); c < obs.NumCats; c++ {
			if c.String() == name {
				keep[c] = true
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown category %q", name)
		}
	}
	return keep, nil
}

// comma renders n with thousands separators.
func comma(n int64) string {
	s := fmt.Sprintf("%d", n)
	var b strings.Builder
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	return b.String()
}
