// mgs-trace runs an application with the protocol tracer attached and
// prints the MGS protocol event stream — the tool used to diagnose
// every protocol race found while building this system.
//
// Usage:
//
//	mgs-trace -app water -p 8 -c 2 [-page 5] [-from 0] [-to 1e9] [-max 500]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"mgs/internal/exp"
	"mgs/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mgs-trace: ")
	var (
		app   = flag.String("app", "water", "application to trace")
		p     = flag.Int("p", 8, "total processors")
		c     = flag.Int("c", 2, "processors per SSMP")
		page  = flag.Int64("page", -1, "only events for this page (-1: all)")
		from  = flag.Int64("from", 0, "suppress events before this cycle")
		to    = flag.Int64("to", 1<<62, "suppress events after this cycle")
		max   = flag.Int("max", 500, "stop printing after this many events")
		small = flag.Bool("small", true, "use reduced problem sizes")
	)
	flag.Parse()

	mk := exp.NewApp
	if *small {
		mk = exp.SmallApp
	}
	a := mk(*app)
	m := harness.NewMachine(exp.Config(*p, *c))
	printed := 0
	filter := ""
	if *page >= 0 {
		filter = fmt.Sprintf("page=%d ", *page)
	}
	m.DSM.TraceFn = func(f string, args ...any) {
		if printed >= *max {
			return
		}
		line := fmt.Sprintf(f, args...)
		if filter != "" && !strings.Contains(line, filter) {
			return
		}
		var t int64
		fmt.Sscanf(line, "t=%d", &t)
		if t < *from || t > *to {
			return
		}
		printed++
		fmt.Println(line)
	}
	a.Setup(m)
	res, err := m.Run(a.Body)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Verify(m); err != nil {
		log.Fatalf("verification: %v", err)
	}
	fmt.Printf("-- %d events printed; run took %s cycles\n", printed, comma(int64(res.Cycles)))
}

// comma renders n with thousands separators.
func comma(n int64) string {
	s := fmt.Sprintf("%d", n)
	var b strings.Builder
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	return b.String()
}
