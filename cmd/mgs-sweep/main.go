// mgs-sweep regenerates the MGS paper's evaluation: Table 4, the
// cluster-size sweeps behind Figures 6–10, the lock hit ratios of
// Figure 11, the Water-kernel comparison of Figure 12, and the design
// ablations from DESIGN.md.
//
// Usage:
//
//	mgs-sweep -table4
//	mgs-sweep -app water            one figure sweep (6-10)
//	mgs-sweep -fig11
//	mgs-sweep -fig12
//	mgs-sweep -ablation 1writer|serialinv [-app water]
//	mgs-sweep -ablation pagesize   [-app tsp] [-c 4]
//
// Common flags: -p 32, -small (reduced sizes), -all (figures 6-12),
// -csv (machine-readable output for plotting), -workers N (concurrent
// sweep points; 0 = GOMAXPROCS, 1 = sequential — output is identical
// either way, each point is an independent deterministic simulation).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"mgs/internal/cli"
	"mgs/internal/exp"
	"mgs/internal/framework"
	"mgs/internal/harness"
	"mgs/internal/stats"
)

// asCSV switches all output to CSV rows on stdout.
var asCSV bool

// emitCSV writes one CSV record, converting every field with %v.
func emitCSV(fields ...any) {
	w := csv.NewWriter(os.Stdout)
	rec := make([]string, len(fields))
	for i, f := range fields {
		switch v := f.(type) {
		case float64:
			rec[i] = strconv.FormatFloat(v, 'g', 6, 64)
		default:
			rec[i] = fmt.Sprintf("%v", f)
		}
	}
	if err := w.Write(rec); err != nil {
		log.Fatal(err)
	}
	w.Flush()
}

func main() {
	t := cli.New("mgs-sweep").MachineFlags("", 32, 4, false).SweepFlags()
	var (
		table4   = flag.Bool("table4", false, "reproduce Table 4")
		fig11    = flag.Bool("fig11", false, "reproduce Figure 11 (lock hit ratios)")
		fig12    = flag.Bool("fig12", false, "reproduce Figure 12 (Water kernel)")
		all      = flag.Bool("all", false, "reproduce Figures 6-12")
		ablation = flag.String("ablation", "", "ablation: 1writer, serialinv, update, pagesize, mesh, lazy")
	)
	t.Parse()
	asCSV = t.CSV
	mk := t.Apps()

	switch {
	case *table4:
		runTable4(t.P, mk)
	case *fig11:
		runFig11(t.P, mk)
	case *fig12:
		runFig12(t.P)
	case *ablation != "":
		runAblation(*ablation, t.App, t.P, t.C, mk)
	case *all:
		for _, name := range exp.AppNames {
			runFigure(name, t.P, mk)
		}
		runFig11(t.P, mk)
		runFig12(t.P)
	case t.App != "":
		runFigure(t.App, t.P, mk)
	default:
		flag.Usage()
	}
}

func runTable4(p int, mk func(string) harness.App) {
	rows, err := exp.Table4(p, mk)
	if err != nil {
		log.Fatal(err)
	}
	if asCSV {
		emitCSV("app", "seq_cycles", "par_cycles", "speedup")
		for _, r := range rows {
			emitCSV(r.App, r.Seq, r.Par, r.Speedup)
		}
		return
	}
	fmt.Printf("Table 4: applications, sequential cycles, speedup on %d processors\n", p)
	for _, r := range rows {
		fmt.Printf("  %-12s seq %12d cycles   S%d = %5.1f\n", r.App, r.Seq, p, r.Speedup)
	}
}

func runFigure(name string, p int, mk func(string) harness.App) {
	points, m, err := exp.FigureSweep(name, p, mk)
	if err != nil {
		log.Fatal(err)
	}
	if asCSV {
		emitCSV("app", "c", "cycles", "user", "lock", "barrier", "mgs")
		for _, pt := range points {
			b := pt.Res.Breakdown
			emitCSV(name, pt.C, pt.Res.Cycles,
				b.Avg[stats.User], b.Avg[stats.Lock], b.Avg[stats.Barrier], b.Avg[stats.MGS])
		}
		return
	}
	fmt.Printf("%s: runtime breakdown vs cluster size (P=%d)\n", name, p)
	printBreakdowns(points)
	fmt.Printf("  %s\n\n", m)
}

func printBreakdowns(points []harness.SweepPoint) {
	fmt.Printf("  %-4s %12s  %10s %10s %10s %10s\n", "C", "cycles", "User", "Lock", "Barrier", "MGS")
	for _, pt := range points {
		b := pt.Res.Breakdown
		fmt.Printf("  %-4d %12d  %10.0f %10.0f %10.0f %10.0f\n",
			pt.C, pt.Res.Cycles,
			b.Avg[stats.User], b.Avg[stats.Lock], b.Avg[stats.Barrier], b.Avg[stats.MGS])
	}
}

func runFig11(p int, mk func(string) harness.App) {
	names := []string{"tsp", "water", "barnes-hut"}
	out, err := exp.LockHitSweep(names, p, mk)
	if err != nil {
		log.Fatal(err)
	}
	if asCSV {
		emitCSV("app", "c", "hit_ratio")
		for _, name := range names {
			for _, pt := range out[name] {
				emitCSV(name, pt.C, pt.Ratio)
			}
		}
		return
	}
	fmt.Printf("Figure 11: MGS lock hit ratio vs cluster size (P=%d)\n", p)
	for _, name := range names {
		fmt.Printf("  %-12s", name)
		for _, pt := range out[name] {
			fmt.Printf("  C=%d: %.2f", pt.C, pt.Ratio)
		}
		fmt.Println()
	}
}

func runFig12(p int) {
	// 16*p is the smallest molecule count whose tiles stay page aligned
	// at every cluster size (C=1 makes p SSMPs and tiles span 16
	// molecules), so -small cannot shrink Figure 12 further.
	n := 16 * p
	plain, tiled, err := exp.Fig12(p, n)
	if err != nil {
		log.Fatal(err)
	}
	if asCSV {
		emitCSV("variant", "c", "cycles")
		for _, pt := range plain {
			emitCSV("plain", pt.C, pt.Res.Cycles)
		}
		for _, pt := range tiled {
			emitCSV("tiled", pt.C, pt.Res.Cycles)
		}
		return
	}
	fmt.Printf("Figure 12: Water kernel, %d molecules, P=%d\n", n, p)
	fmt.Println(" unoptimized:")
	printBreakdowns(plain)
	fmt.Printf("  %s\n", framework.Analyze(exp.FrameworkPoints(plain)))
	fmt.Println(" tiled:")
	printBreakdowns(tiled)
	fmt.Printf("  %s\n", framework.Analyze(exp.FrameworkPoints(tiled)))
}

func runAblation(kind, app string, p, c int, mk func(string) harness.App) {
	if app == "" {
		app = "water"
	}
	switch kind {
	case "1writer":
		on, off, err := exp.AblationSingleWriter(app, p, mk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("single-writer optimization ablation, %s (P=%d)\n", app, p)
		printOnOff("with", on, "without", off)
	case "serialinv":
		serial, par, err := exp.AblationSerialInv(app, p, mk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("serial vs parallel invalidation ablation, %s (P=%d)\n", app, p)
		printOnOff("serial", serial, "parallel", par)
	case "update":
		inval, update, err := exp.AblationUpdateProtocol(app, p, mk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("invalidate vs update protocol ablation, %s (P=%d)\n", app, p)
		printOnOff("invalidate", inval, "update", update)
	case "lazy":
		eager, lazy, err := exp.AblationLazy(app, p, mk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("eager vs lazy release consistency, %s (P=%d)\n", app, p)
		printOnOff("eager", eager, "lazy", lazy)
	case "mesh":
		uniform, mesh, err := exp.AblationMesh(app, p, 250, mk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("uniform LAN vs contended 2D-mesh interconnect, %s (P=%d)\n", app, p)
		printOnOff("uniform", uniform, "mesh", mesh)
	case "pagesize":
		pts, err := exp.AblationPageSize(app, p, c, []int{256, 512, 1024, 2048, 4096}, mk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("page size ablation, %s (P=%d, C=%d)\n", app, p, c)
		for _, pt := range pts {
			fmt.Printf("  %5dB pages: %12d cycles\n", pt.PageSize, pt.Cycles)
		}
	default:
		log.Fatalf("unknown ablation %q", kind)
	}
}

func printOnOff(an string, a []harness.SweepPoint, bn string, b []harness.SweepPoint) {
	if asCSV {
		emitCSV("c", an, bn)
		for i := range a {
			emitCSV(a[i].C, a[i].Res.Cycles, b[i].Res.Cycles)
		}
		return
	}
	fmt.Printf("  %-4s %14s %14s\n", "C", an, bn)
	for i := range a {
		fmt.Printf("  %-4d %14d %14d\n", a[i].C, a[i].Res.Cycles, b[i].Res.Cycles)
	}
}
