// mgs-micro reproduces Table 3 of the MGS paper: the cost of primitive
// shared-memory operations, measured through the full protocol stack on
// a 0-cycle-delay machine with 1K-byte pages.
//
// Usage:
//
//	mgs-micro
package main

import (
	"fmt"

	"mgs/internal/exp"
)

func main() {
	fmt.Print(exp.Table3())
}
