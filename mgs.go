// Package mgs is a from-scratch reproduction of "MGS: A Multigrain
// Shared Memory System" (Yeung, Kubiatowicz, Agarwal — ISCA 1996): a
// shared memory system for Distributed Scalable Shared-memory
// Multiprocessors (DSSMPs) that couples hardware cache coherence inside
// each small multiprocessor (SSMP) with software page-based distributed
// shared memory between them.
//
// Because the paper's substrate is hardware (the MIT Alewife machine),
// this implementation runs on a deterministic, cycle-accounted
// multiprocessor simulator: applications are real Go code computing
// real, verified results, while every shared-memory access passes
// through simulated TLBs, caches, directories, page tables, and the
// full MGS protocol (Local Client / Remote Client / Server engines,
// twin/diff multiple-writer release consistency, the single-writer
// optimization, and the hierarchical barrier and token-lock library).
//
// # Quick start
//
//	cfg := mgs.NewConfig(16, 4) // 16 processors, SSMPs of 4
//	m := mgs.NewMachine(cfg)
//	sum := m.Alloc(8)
//	res, err := m.Run(func(c *mgs.Ctx) {
//	    c.Acquire(0)
//	    c.StoreI64(sum, c.LoadI64(sum)+int64(c.ID))
//	    c.Release(0)
//	    c.Barrier(0)
//	})
//
// res.Breakdown splits execution into the paper's User / Lock /
// Barrier / MGS components; res.LockHits/LockTotal give the Figure 11
// lock hit ratio.
//
// The paper's applications live in internal/apps, the experiment
// definitions (every table and figure of §5) in internal/exp, and the
// runnable tools in cmd/. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results.
package mgs

import (
	"mgs/internal/harness"
	"mgs/internal/msg"
	"mgs/internal/sim"
	"mgs/internal/vm"
)

// Config describes a DSSMP: processor count, cluster size, page size,
// inter-SSMP latency, and all hardware/software cost tables.
type Config = harness.Config

// Machine is an assembled DSSMP ready to run one workload.
type Machine = harness.Machine

// Ctx is the per-processor programming interface: simulated loads and
// stores, compute-cycle charging, locks, and barriers.
type Ctx = harness.Ctx

// App is a runnable, self-verifying application.
type App = harness.App

// Result summarizes a run: cycles, User/Lock/Barrier/MGS breakdown,
// lock hit statistics, and message traffic.
type Result = harness.Result

// Addr is a simulated virtual address.
type Addr = vm.Addr

// Time is virtual time in processor clock cycles.
type Time = sim.Time

// Topology is a pluggable inter-SSMP interconnect: a routing function
// over directed links with per-link latency and bandwidth, plus a
// conservative parallel-engine lookahead. See WithTopology.
type Topology = msg.Topology

// NewUniform returns the paper's uniform fixed-delay LAN topology (the
// default): every inter-SSMP message pays InterDelay, no contention.
func NewUniform() Topology { return msg.NewUniform() }

// NewMesh2D returns a near-square 2D mesh of SSMPs with
// dimension-ordered routing and store-and-forward link contention.
func NewMesh2D() Topology { return msg.NewMesh2D() }

// NewFatTree returns a fat-tree of SSMPs whose link bandwidth doubles
// toward the root; arity <= 0 means the default 4.
func NewFatTree(arity int) Topology { return msg.NewFatTree(arity) }

// NewTiered returns a heterogeneous LAN/WAN topology: sites of siteSize
// SSMPs on fast local switches, joined by thin, slow WAN trunks;
// siteSize <= 0 means the default 8.
func NewTiered(siteSize int) Topology { return msg.NewTiered(siteSize) }

// DefaultConfig returns the calibrated paper configuration for P
// processors in clusters of c (1K-byte pages, 1000-cycle inter-SSMP
// delay; software coherence disabled when c == P, as in the paper's
// tightly-coupled baseline runs).
//
// Deprecated: use NewConfig, which takes functional options
// (WithPageSize, WithFaultPlan, WithObserver, ...).
func DefaultConfig(p, c int) Config { return NewConfig(p, c) }

// NewMachine assembles a DSSMP from a configuration.
func NewMachine(cfg Config) *Machine { return harness.NewMachine(cfg) }

// RunApp builds a machine, runs the application, and verifies its
// result.
func RunApp(app App, cfg Config) (Result, error) { return harness.RunApp(app, cfg) }
