package mgs

import (
	"io"

	"mgs/internal/fault"
	"mgs/internal/obs"
	"mgs/internal/stats"
)

// This file is the public face of the observability spine and the
// fault-injection machinery (internal/obs, internal/fault), so that
// programs using the mgs package — including everything under
// examples/ — can trace, meter, profile, and chaos-test a machine
// without reaching into internal packages.

// Observer is the observability spine of one machine: a structured
// trace bus with pluggable sinks, a metrics registry, and an optional
// cycle-attribution profiler. Build one with NewObserver, attach it
// with WithObserver, and read it after the run. A nil *Observer means
// "observability off" and costs nothing.
type Observer = obs.Observer

// NewObserver returns an observer with a fresh metrics registry, no
// trace sinks, and profiling off:
//
//	obsv := mgs.NewObserver().AddSink(mgs.NewTextSink(os.Stdout))
//	cfg := mgs.NewConfig(8, 2, mgs.WithObserver(obsv))
func NewObserver() *Observer { return obs.New() }

// Event is one typed trace event: a protocol transition, transport
// fate, synchronization operation, or engine handshake, timestamped in
// virtual cycles.
type Event = obs.Event

// Sink consumes trace events. TextSink, ChromeSink, MemSink, and
// FuncSink are the stock implementations; FilterSink narrows a stream.
type Sink = obs.Sink

// FuncSink adapts a plain function to the Sink interface.
type FuncSink = obs.FuncSink

// TextSink renders events as the classic one-line-per-event text log.
type TextSink = obs.TextSink

// NewTextSink returns a text sink writing to w.
func NewTextSink(w io.Writer) *TextSink { return obs.NewTextSink(w) }

// ChromeSink buffers events and renders Chrome trace_event JSON for
// chrome://tracing or Perfetto: one track per processor plus one per
// software engine, timestamped in virtual cycles.
type ChromeSink = obs.ChromeSink

// NewChromeSink returns a Chrome trace sink for a machine of nprocs
// processors. After the run, render with WriteTo.
func NewChromeSink(nprocs int) *ChromeSink { return obs.NewChromeSink(nprocs) }

// MemSink buffers events in memory for post-processing.
type MemSink = obs.MemSink

// FilterSink wraps a sink so only events satisfying keep reach it.
func FilterSink(inner Sink, keep func(Event) bool) Sink { return obs.Filter(inner, keep) }

// EventCat classifies trace events; Event.Cat holds one of
// CatProtocol, CatTransport, CatSync, or CatEngine.
type EventCat = obs.Cat

// Event categories.
const (
	CatProtocol  EventCat = obs.Protocol  // page protocol transitions
	CatTransport EventCat = obs.Transport // transport fates (drops, retransmits, acks)
	CatSync      EventCat = obs.Sync      // lock and barrier operations
	CatEngine    EventCat = obs.Engine    // software engine handshakes
)

// ObjKind classifies the object a trace event or profiler sample is
// about: a page, a lock, a barrier, or nothing.
type ObjKind = obs.ObjKind

// Object kinds.
const (
	ObjNone    ObjKind = obs.ObjNone
	ObjPage    ObjKind = obs.ObjPage
	ObjLock    ObjKind = obs.ObjLock
	ObjBarrier ObjKind = obs.ObjBarrier
)

// Metric is one snapshot entry from an observer's metrics registry:
// a counter, a gauge, or a virtual-time histogram.
type Metric = obs.Metric

// Profiler attributes every simulated cycle to a (processor,
// component, object) key. Arm it with Observer.EnableProfiling before
// building the machine; read it with Observer.Profiler after the run.
type Profiler = obs.Profiler

// ProfSample is one nonzero profiler cell.
type ProfSample = obs.Sample

// HeatLine is one object's aggregate cycle cost across all processors
// (Profiler.Heat).
type HeatLine = obs.HeatLine

// FaultPlan is a deterministic fault schedule for inter-SSMP messages:
// seeded pseudo-random drops, duplications, and delays in basis
// points. The zero value injects nothing and is the identity. Attach
// with WithFaultPlan.
type FaultPlan = fault.Plan

// DefaultMaxDelay is the extra-latency bound used when
// FaultPlan.MaxDelay is zero.
const DefaultMaxDelay Time = fault.DefaultMaxDelay

// FaultStats is the fault-injection transport's accounting view,
// reported in Result.Fault (all zeros on fault-free runs).
type FaultStats = stats.Fault

// Category is one runtime component of the paper's breakdown figures:
// User, Lock, Barrier, or MGS. Profiler component ordinals index these.
type Category = stats.Category

// Runtime components.
const (
	User          Category = stats.User
	LockTime      Category = stats.Lock
	BarrierTime   Category = stats.Barrier
	MGSTime       Category = stats.MGS
	NumCategories Category = stats.NumCategories
)
