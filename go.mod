module mgs

go 1.22
